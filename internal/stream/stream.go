// Package stream provides the sampling primitives for running the tester
// over live data streams — the streaming-histogram setting the paper's
// introduction cites ([GGI+02], [GKS06]): reservoir sampling (a uniform
// sample of everything seen), sliding windows (the most recent W events),
// and a chunker that hands fixed-size windows to a testing callback.
//
// The distribution-testing model needs i.i.d. samples; for a stream whose
// events are exchangeable within the period of interest, a uniform
// reservoir over that period (or a window of recent events) provides
// exactly that, and its size can be matched to the tester's budget via
// histtest.RequiredSamples.
package stream

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Reservoir maintains a uniform random sample of fixed capacity over an
// unbounded stream (Vitter's Algorithm L: O(capacity·(1+log(n/capacity)))
// random numbers over n events).
type Reservoir struct {
	cap   int
	items []int
	seen  int64
	r     *rng.RNG
	// skip state for Algorithm L
	w    float64
	next int64
}

// NewReservoir returns a reservoir holding up to capacity items.
func NewReservoir(capacity int, r *rng.RNG) (*Reservoir, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("stream: reservoir capacity %d must be positive", capacity)
	}
	return &Reservoir{cap: capacity, items: make([]int, 0, capacity), r: r, w: 1}, nil
}

// Offer feeds one stream event to the reservoir.
func (rv *Reservoir) Offer(v int) {
	rv.seen++
	if len(rv.items) < rv.cap {
		rv.items = append(rv.items, v)
		if len(rv.items) == rv.cap {
			rv.advance()
		}
		return
	}
	if rv.seen >= rv.next {
		rv.items[rv.r.Intn(rv.cap)] = v
		rv.advance()
	}
}

// advance draws the next acceptance index per Algorithm L.
func (rv *Reservoir) advance() {
	rv.w *= math.Exp(math.Log(rv.r.Float64Open()) / float64(rv.cap))
	skip := math.Floor(math.Log(rv.r.Float64Open())/math.Log1p(-rv.w)) + 1
	if skip < 1 || math.IsNaN(skip) || math.IsInf(skip, 0) {
		skip = 1
	}
	rv.next = rv.seen + int64(skip)
}

// Seen returns the number of events offered so far.
func (rv *Reservoir) Seen() int64 { return rv.seen }

// Len returns the number of items currently held.
func (rv *Reservoir) Len() int { return len(rv.items) }

// Snapshot returns a copy of the current sample (unordered).
func (rv *Reservoir) Snapshot() []int {
	return append([]int(nil), rv.items...)
}

// Window keeps the most recent capacity events of a stream (ring buffer).
type Window struct {
	buf   []int
	size  int
	head  int
	total int64
}

// NewWindow returns a sliding window of the given capacity.
func NewWindow(capacity int) (*Window, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("stream: window capacity %d must be positive", capacity)
	}
	return &Window{buf: make([]int, capacity)}, nil
}

// Offer feeds one event.
func (w *Window) Offer(v int) {
	w.buf[w.head] = v
	w.head = (w.head + 1) % len(w.buf)
	if w.size < len(w.buf) {
		w.size++
	}
	w.total++
}

// Full reports whether the window has reached capacity.
func (w *Window) Full() bool { return w.size == len(w.buf) }

// Len returns the current number of buffered events.
func (w *Window) Len() int { return w.size }

// Seen returns the number of events offered so far.
func (w *Window) Seen() int64 { return w.total }

// Snapshot returns the window contents in arrival order (oldest first).
func (w *Window) Snapshot() []int {
	out := make([]int, w.size)
	if w.size < len(w.buf) {
		copy(out, w.buf[:w.size])
		return out
	}
	n := copy(out, w.buf[w.head:])
	copy(out[n:], w.buf[:w.head])
	return out
}

// Verdict is one chunk decision from a Chunker.
type Verdict struct {
	// ChunkIndex counts emitted chunks from 0.
	ChunkIndex int
	// Accept is the callback's decision for the chunk.
	Accept bool
	// Err is the callback's error, if any (the chunker keeps running).
	Err error
}

// Chunker buffers a stream into fixed-size chunks and invokes a decision
// callback on each complete chunk — the glue between a stream and
// histtest.TestSamples.
type Chunker struct {
	size    int
	buf     []int
	decide  func(samples []int) (bool, error)
	verdict []Verdict
	chunks  int
}

// NewChunker returns a chunker emitting a decision every size events.
func NewChunker(size int, decide func(samples []int) (bool, error)) (*Chunker, error) {
	if size < 1 {
		return nil, fmt.Errorf("stream: chunk size %d must be positive", size)
	}
	if decide == nil {
		return nil, fmt.Errorf("stream: nil decision callback")
	}
	return &Chunker{size: size, buf: make([]int, 0, size), decide: decide}, nil
}

// Offer feeds one event; when a chunk completes, the decision callback
// runs synchronously and its verdict is recorded.
func (c *Chunker) Offer(v int) {
	c.buf = append(c.buf, v)
	if len(c.buf) < c.size {
		return
	}
	accept, err := c.decide(c.buf)
	c.verdict = append(c.verdict, Verdict{ChunkIndex: c.chunks, Accept: accept, Err: err})
	c.chunks++
	c.buf = c.buf[:0]
}

// Verdicts returns all decisions so far.
func (c *Chunker) Verdicts() []Verdict {
	return append([]Verdict(nil), c.verdict...)
}

// Pending returns how many events are buffered toward the next chunk.
func (c *Chunker) Pending() int { return len(c.buf) }
