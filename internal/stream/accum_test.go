package stream

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// foldSerial is the reference model: one flat map, batches applied in
// order, no shards, no generations.
func foldSerial(batches [][]int32) map[int32]int64 {
	m := make(map[int32]int64)
	for _, b := range batches {
		for _, v := range b {
			m[v]++
		}
	}
	return m
}

// snapshotMap folds an accumulator snapshot into a comparable map.
func snapshotMap(t *testing.T, a *Accumulator) map[int32]int64 {
	t.Helper()
	c, stats := a.Snapshot()
	defer c.Release()
	m := make(map[int32]int64)
	c.ForEach(func(elem, count int) { m[int32(elem)] = int64(count) })
	if int64(c.Total()) != stats.Events {
		t.Fatalf("snapshot total %d != stats events %d", c.Total(), stats.Events)
	}
	if c.Distinct() != stats.Distinct {
		t.Fatalf("snapshot distinct %d != stats distinct %d", c.Distinct(), stats.Distinct)
	}
	return m
}

func mapsEqual(a, b map[int32]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestAccumulatorEqualsSerialFold is the satellite property test:
// for random domains, shard counts, backings, batch shapes, and random
// CONCURRENT interleavings, the sharded accumulator's snapshot equals a
// serial single-map fold of the same batches. Addition commutes, so any
// interleaving must land on the same tallies.
func TestAccumulatorEqualsSerialFold(t *testing.T) {
	rr := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rr.Intn(10_000)
		cfg := AccumConfig{
			N:           n,
			Shards:      1 << rr.Intn(6),
			ForceSparse: rr.Intn(2) == 1,
		}
		a, err := NewAccumulator(cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		nBatches := 1 + rr.Intn(20)
		batches := make([][]int32, nBatches)
		for i := range batches {
			b := make([]int32, rr.Intn(500))
			for j := range b {
				// Skew some trials so single shards go hot.
				if rr.Intn(2) == 0 {
					b[j] = int32(rr.Intn(n))
				} else {
					b[j] = int32(rr.Intn(1 + n/7))
				}
			}
			batches[i] = b
		}

		// Random interleaving: every batch from its own goroutine.
		var wg sync.WaitGroup
		for _, b := range batches {
			wg.Add(1)
			go func(b []int32) {
				defer wg.Done()
				a.Ingest(b)
			}(b)
		}
		wg.Wait()

		want := foldSerial(batches)
		got := snapshotMap(t, a)
		if !mapsEqual(got, want) {
			t.Fatalf("trial %d (n=%d shards=%d sparse=%v): sharded snapshot differs from serial fold",
				trial, n, a.Shards(), !a.Dense())
		}
	}
}

// TestAccumulatorRotation: generations drop in FIFO order and the
// window's running totals stay consistent.
func TestAccumulatorRotation(t *testing.T) {
	a, err := NewAccumulator(AccumConfig{N: 100, Shards: 4, Generations: 3})
	if err != nil {
		t.Fatal(err)
	}
	gen := func(v int32, k int) {
		b := make([]int32, k)
		for i := range b {
			b[i] = v
		}
		a.Ingest(b)
	}
	gen(1, 10) // gen 0
	a.Rotate()
	gen(2, 20) // gen 1
	a.Rotate()
	gen(3, 30) // gen 2
	if got := a.WindowEvents(); got != 60 {
		t.Fatalf("window holds %d events, want 60 (no generation dropped yet)", got)
	}
	// Fourth generation reuses slot 0: the 10 events of element 1 fall out.
	if dropped := a.Rotate(); dropped != 10 {
		t.Fatalf("rotation dropped %d events, want 10", dropped)
	}
	gen(4, 40)
	if got := a.WindowEvents(); got != 90 {
		t.Fatalf("window holds %d events, want 90", got)
	}
	if got := a.TotalEvents(); got != 100 {
		t.Fatalf("all-time total %d, want 100 (rotations do not subtract)", got)
	}
	m := snapshotMap(t, a)
	want := map[int32]int64{2: 20, 3: 30, 4: 40}
	if !mapsEqual(m, want) {
		t.Fatalf("post-rotation snapshot = %v, want %v", m, want)
	}
	if a.Rotations() != 3 {
		t.Fatalf("rotations = %d, want 3", a.Rotations())
	}
}

// TestAccumulatorShardShapes pins the constructor's shard arithmetic:
// power-of-two rounding, the domain bound, and empty trailing ranges.
func TestAccumulatorShardShapes(t *testing.T) {
	cases := []struct {
		n, shards, wantShards int
	}{
		{5, 4, 4},             // width 2 → shard 3 owns the empty range [5,5)
		{1, 8, 1},             // never more shards than elements
		{100, 3, 4},           // rounds up to a power of two
		{100, 0, 0},           // default: resolved from GOMAXPROCS, just must build
		{1 << 20, 2000, 1024}, // clamped at maxShards
	}
	for _, tc := range cases {
		a, err := NewAccumulator(AccumConfig{N: tc.n, Shards: tc.shards})
		if err != nil {
			t.Fatalf("n=%d shards=%d: %v", tc.n, tc.shards, err)
		}
		if tc.wantShards != 0 && a.Shards() != tc.wantShards {
			t.Fatalf("n=%d shards=%d: got %d shards, want %d", tc.n, tc.shards, a.Shards(), tc.wantShards)
		}
		if s := a.Shards(); s&(s-1) != 0 {
			t.Fatalf("n=%d shards=%d: %d shards is not a power of two", tc.n, tc.shards, s)
		}
		// Every element must land in a shard that owns it.
		for v := 0; v < min(tc.n, 2000); v++ {
			idx := a.shardOf(int32(v))
			if idx < 0 || idx >= a.Shards() {
				t.Fatalf("n=%d: element %d maps to shard %d of %d", tc.n, v, idx, a.Shards())
			}
			if a.Dense() {
				lo, hi := a.shardRange(idx)
				if v < lo || v >= hi {
					t.Fatalf("n=%d: element %d mapped to shard %d covering [%d,%d)", tc.n, v, idx, lo, hi)
				}
			}
		}
	}
	if _, err := NewAccumulator(AccumConfig{N: 0}); err == nil {
		t.Fatal("empty domain accepted")
	}
}

// TestOpenTable exercises the sparse backing directly: growth across
// the load threshold, duplicate keys, reset reuse.
func TestOpenTable(t *testing.T) {
	var tab openTable
	const keys = 500
	for round := 0; round < 2; round++ {
		for i := 0; i < keys; i++ {
			tab.add(int32(i*7), 1)
			tab.add(int32(i*7), 2)
		}
		for i := 0; i < keys; i++ {
			if got := tab.get(int32(i * 7)); got != 3 {
				t.Fatalf("round %d: key %d = %d, want 3", round, i*7, got)
			}
		}
		if tab.get(1) != 0 {
			t.Fatal("absent key returned a count")
		}
		var sum int64
		tab.forEach(func(_ int32, c int64) { sum += c })
		if sum != 3*keys {
			t.Fatalf("round %d: forEach sum = %d, want %d", round, sum, 3*keys)
		}
		tab.reset()
		if tab.used != 0 || tab.get(0) != 0 {
			t.Fatal("reset left occupied slots")
		}
	}
}

// TestSoakIngestConservation is the `make soak-smoke` anchor: N
// goroutines hammer one accumulator with M batches each (with rotations
// and snapshots interleaved), and every event must be accounted for —
// conservation of the all-time total, and a final snapshot matching a
// serial replay of the same batches. Run under -race this also proves
// the shard/phase locking has no data races or deadlocks.
func TestSoakIngestConservation(t *testing.T) {
	goroutines, batchesPer, batchLen := 8, 200, 512
	if testing.Short() {
		goroutines, batchesPer = 4, 50
	}
	a, err := NewAccumulator(AccumConfig{N: 4096, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-generate per-goroutine batches so the serial reference sees the
	// exact same data.
	all := make([][][]int32, goroutines)
	for g := range all {
		rr := rand.New(rand.NewSource(int64(g + 1)))
		all[g] = make([][]int32, batchesPer)
		for i := range all[g] {
			b := make([]int32, batchLen)
			for j := range b {
				b[j] = int32(rr.Intn(4096))
			}
			all[g][i] = b
		}
	}

	stop := make(chan struct{})
	var maint sync.WaitGroup
	maint.Add(1)
	go func() { // concurrent snapshots: must never tear a batch
		defer maint.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c, _ := a.Snapshot()
			c.Release()
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(batches [][]int32) {
			defer wg.Done()
			for _, b := range batches {
				a.Ingest(b)
			}
		}(all[g])
	}
	wg.Wait()
	close(stop)
	maint.Wait()

	wantTotal := int64(goroutines * batchesPer * batchLen)
	if got := a.TotalEvents(); got != wantTotal {
		t.Fatalf("conservation violated: %d events ingested, %d accounted", wantTotal, got)
	}
	if got := a.WindowEvents(); got != wantTotal {
		t.Fatalf("window holds %d events, want %d (nothing rotated)", got, wantTotal)
	}
	var flat [][]int32
	for _, gb := range all {
		flat = append(flat, gb...)
	}
	if !mapsEqual(snapshotMap(t, a), foldSerial(flat)) {
		t.Fatal("final snapshot differs from serial fold of the same batches")
	}
}
