// Package tolerant provides additive-error estimation of total-variation
// distance from samples — the expensive primitive whose cost motivates
// the paper's approach. Footnote 4 of the paper recalls the [VV10] bound:
// even deciding dTV(D, uniform) <= ε vs >= 2ε needs Ω(n/log n) samples,
// so "testing by learning" with a TOLERANT verifier is a dead end; the
// paper instead verifies in χ² (cheap) and sieves. This package supplies
// the plug-in estimator at its Θ(n/η²) cost so that trade-off can be
// exhibited rather than asserted:
//
//   - EstimateTVKnown: additive-η estimate of dTV(D, D*) for known D*;
//   - ToleranceTester: the tolerant decision rule built on it.
//
// The estimator corrects the plug-in's upward bias on unseen/low-count
// elements by the standard missing-mass adjustment.
package tolerant

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/oracle"
)

// SamplesFor returns the plug-in budget m = C·n/η² for an additive-η TV
// estimate with constant confidence (C ≈ 2 suffices; see the tests).
func SamplesFor(n int, eta, c float64) int {
	if c <= 0 {
		c = 2
	}
	return int(math.Ceil(c * float64(n) / (eta * eta)))
}

// EstimateTVKnown estimates dTV(D, D*) to additive error ~η from
// m = SamplesFor(n, η, c) samples of the unknown D, where D* is fully
// known. The estimate is the plug-in dTV(empirical, D*) minus the
// expected empirical self-distance of D* at this sample size (a bias
// correction computed by simulation-free approximation: for a cell with
// expectation λ = m·D*(i), E|Poisson(λ)−λ|/m ≈ √(2λ/π)/m, summed over
// cells — exact enough for the constant-confidence regime).
func EstimateTVKnown(o oracle.Oracle, dstar dist.Distribution, eta, c float64) (float64, error) {
	n := o.N()
	if dstar.N() != n {
		return 0, fmt.Errorf("tolerant: domain mismatch %d vs %d", dstar.N(), n)
	}
	if eta <= 0 || eta > 1 {
		return 0, fmt.Errorf("tolerant: eta = %v must be in (0, 1]", eta)
	}
	m := SamplesFor(n, eta, c)
	counts := oracle.NewCounts(n, oracle.DrawN(o, m))
	emp := counts.Empirical()
	plugin := dist.TV(emp, dstar)

	// Bias of the plug-in under D = D*: Σ E|N_i − λ_i| / (2m) with
	// N_i ~ Binomial(m, D*(i)) ≈ Poisson(λ_i); E|N−λ| ≈ √(2λ/π) for
	// λ >= ~1 and ≈ 2λ(1−λ) + ... ~ 2λe^{-λ} small-λ (we use the smooth
	// interpolation min(√(2λ/π), 2λ·e^{−λ}·(1−...)+λ·...) — in practice
	// min(√(2λ/π), 2λ) is within a few percent across the range).
	bias := 0.0
	for i := 0; i < n; {
		end := dstar.RunEnd(i)
		if end > n {
			end = n
		}
		lambda := float64(m) * dstar.Prob(i)
		var e float64
		if lambda > 0 {
			e = math.Min(math.Sqrt(2*lambda/math.Pi), 2*lambda*math.Exp(-lambda)+math.Sqrt(2*lambda/math.Pi)*(1-math.Exp(-lambda)))
		}
		bias += float64(end-i) * e
		i = end
	}
	bias /= 2 * float64(m)

	est := plugin - bias
	if est < 0 {
		est = 0
	}
	if est > 1 {
		est = 1
	}
	return est, nil
}

// Decision is a tolerant-test verdict.
type Decision struct {
	// Close is true when the estimate is below the midpoint of
	// [eps1, eps2].
	Close bool
	// Estimate is the debiased TV estimate.
	Estimate float64
	// Samples is the number of samples consumed.
	Samples int64
}

// ToleranceTester decides dTV(D, D*) <= eps1 (Close) versus >= eps2, with
// constant confidence, at the plug-in cost Θ(n/(eps2−eps1)²). This is the
// primitive whose Ω(n/log n) lower bound ([VV10]) forced the paper's
// χ²-based design — compare its budget against the tester's O(√n/ε²).
func ToleranceTester(o oracle.Oracle, dstar dist.Distribution, eps1, eps2, c float64) (Decision, error) {
	if !(0 <= eps1 && eps1 < eps2 && eps2 <= 1) {
		return Decision{}, fmt.Errorf("tolerant: need 0 <= eps1 < eps2 <= 1, got %v, %v", eps1, eps2)
	}
	start := o.Samples()
	eta := (eps2 - eps1) / 3
	est, err := EstimateTVKnown(o, dstar, eta, c)
	if err != nil {
		return Decision{}, err
	}
	return Decision{
		Close:    est <= (eps1+eps2)/2,
		Estimate: est,
		Samples:  o.Samples() - start,
	}, nil
}
