package tolerant

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/oracle"
	"repro/internal/rng"
)

func TestEstimateTVZeroOnMatch(t *testing.T) {
	r := rng.New(1)
	d := dist.Uniform(512)
	sum := 0.0
	const reps = 20
	for i := 0; i < reps; i++ {
		s := oracle.NewSampler(d, r.Split())
		est, err := EstimateTVKnown(s, d, 0.1, 2)
		if err != nil {
			t.Fatal(err)
		}
		sum += est
	}
	if avg := sum / reps; avg > 0.05 {
		t.Fatalf("self-distance estimate = %v, want ~0", avg)
	}
}

func TestEstimateTVTracksTruth(t *testing.T) {
	r := rng.New(2)
	n := 512
	dstar := dist.Uniform(n)
	for _, target := range []float64{0.1, 0.25, 0.4} {
		d, achieved := gen.BlockComb(dstar, 64, target)
		sum := 0.0
		const reps = 15
		for i := 0; i < reps; i++ {
			s := oracle.NewSampler(d, r.Split())
			est, err := EstimateTVKnown(s, dstar, 0.08, 2)
			if err != nil {
				t.Fatal(err)
			}
			sum += est
		}
		avg := sum / reps
		if math.Abs(avg-achieved) > 0.08 {
			t.Fatalf("target %v: estimate %v vs truth %v", target, avg, achieved)
		}
	}
}

func TestEstimateTVValidation(t *testing.T) {
	r := rng.New(3)
	s := oracle.NewSampler(dist.Uniform(8), r)
	if _, err := EstimateTVKnown(s, dist.Uniform(9), 0.1, 2); err == nil {
		t.Fatal("mismatched domains accepted")
	}
	if _, err := EstimateTVKnown(s, dist.Uniform(8), 0, 2); err == nil {
		t.Fatal("eta = 0 accepted")
	}
}

func TestToleranceTester(t *testing.T) {
	r := rng.New(4)
	n := 512
	dstar := dist.Uniform(n)
	closeD, _ := gen.BlockComb(dstar, 64, 0.05)
	farD, _ := gen.BlockComb(dstar, 64, 0.45)

	closeOK, farOK := 0, 0
	const trials = 10
	for i := 0; i < trials; i++ {
		s1 := oracle.NewSampler(closeD, r.Split())
		dec, err := ToleranceTester(s1, dstar, 0.1, 0.35, 2)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Close {
			closeOK++
		}
		if dec.Samples <= 0 {
			t.Fatal("sample accounting missing")
		}
		s2 := oracle.NewSampler(farD, r.Split())
		dec, err = ToleranceTester(s2, dstar, 0.1, 0.35, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Close {
			farOK++
		}
	}
	if closeOK < 8 || farOK < 8 {
		t.Fatalf("tolerant verdicts: close %d/10, far %d/10", closeOK, farOK)
	}
	if _, err := ToleranceTester(oracle.NewSampler(dstar, r), dstar, 0.5, 0.3, 2); err == nil {
		t.Fatal("inverted thresholds accepted")
	}
}

func TestTolerantCostDwarfsTesting(t *testing.T) {
	// The point of the package: tolerant verification pays ~n while the
	// paper's tester pays ~√n. At n = 2^14 the gap is two orders.
	n := 1 << 14
	tolBudget := SamplesFor(n, 0.1, 2)
	if tolBudget < 100*int(math.Sqrt(float64(n))) {
		t.Fatalf("tolerant budget %d suspiciously small", tolBudget)
	}
}
