// Benchmark harness: one testing.B benchmark per experiment table of the
// reproduction (see DESIGN.md's experiment index and EXPERIMENTS.md for
// recorded results). Each benchmark executes the registered experiment in
// Quick mode and reports the tables through b.Log, so
//
//	go test -bench=E -benchtime=1x
//
// regenerates every table. cmd/histbench runs the same experiments at
// full fidelity with nicer output.
package repro

import (
	"bytes"
	"testing"

	"repro/internal/benchhot"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/exper"
	"repro/internal/intervals"
	"repro/internal/oracle"
	"repro/internal/rng"
)

// runExperiment executes one registered experiment per benchmark
// iteration and logs its rendered tables.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exper.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(exper.RunConfig{Seed: uint64(42 + i), Quick: true})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 {
			var buf bytes.Buffer
			for _, tb := range tables {
				if err := tb.Render(&buf); err != nil {
					b.Fatal(err)
				}
			}
			b.Logf("%s: %s\n%s", id, e.Claim, buf.String())
		}
	}
}

// BenchmarkE1SampleComplexityVsN regenerates the Theorem 1.1 √n-scaling
// table.
func BenchmarkE1SampleComplexityVsN(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkE2SampleComplexityVsK regenerates the Theorem 1.1 k-scaling
// table.
func BenchmarkE2SampleComplexityVsK(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkE3BaselineComparison regenerates the Section 1.2 comparison
// against ILR12, CDGR16, and the naive learner.
func BenchmarkE3BaselineComparison(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkE4PaninskiHardness regenerates the Proposition 4.1 hardness
// tables for the Q_ε family.
func BenchmarkE4PaninskiHardness(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkE5SupportSizeReduction regenerates the Proposition 4.2 /
// Lemma 4.4 reduction tables.
func BenchmarkE5SupportSizeReduction(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkE6OperatingCharacteristic regenerates the Section 2
// accept-rate-vs-distance curve.
func BenchmarkE6OperatingCharacteristic(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkE7RunningTime regenerates the Theorem 3.1 running-time table.
func BenchmarkE7RunningTime(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkE8SievingAblation regenerates the Section 3.2.1 sieve
// ablation.
func BenchmarkE8SievingAblation(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkE9LearnerChiSq regenerates the Lemma 3.5 learner-error curve.
func BenchmarkE9LearnerChiSq(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkE10ModelSelection regenerates the Section 1.1 model-selection
// pipeline table.
func BenchmarkE10ModelSelection(b *testing.B) { runExperiment(b, "E10") }

// BenchmarkE11PoissonizationAblation regenerates the Section 2
// Poissonization ablation.
func BenchmarkE11PoissonizationAblation(b *testing.B) { runExperiment(b, "E11") }

// BenchmarkE12CheckAblation regenerates the Step-10 check ablation.
func BenchmarkE12CheckAblation(b *testing.B) { runExperiment(b, "E12") }

// BenchmarkE13KnownPartition regenerates the Section 1.2 known-vs-unknown
// partition comparison.
func BenchmarkE13KnownPartition(b *testing.B) { runExperiment(b, "E13") }

// BenchmarkE14EngineHeadToHead regenerates the adk-vs-cdkl22 operating
// characteristic and samples-to-decision comparison.
func BenchmarkE14EngineHeadToHead(b *testing.B) { runExperiment(b, "E14") }

// BenchmarkE15TwoSampleCloseness regenerates the DKN'17-reduction vs
// naive full-domain CDVV14 two-sample closeness comparison.
func BenchmarkE15TwoSampleCloseness(b *testing.B) { runExperiment(b, "E15") }

// benchEightHistogram returns a well-separated 8-histogram over [0, n)
// for the sieve hot-path benchmark.
func benchEightHistogram(n int) *dist.PiecewiseConstant {
	masses := []float64{0.25, 0.05, 0.15, 0.02, 0.2, 0.08, 0.15, 0.1}
	pieces := make([]dist.Piece, len(masses))
	w := n / len(masses)
	for j, m := range masses {
		hi := (j + 1) * w
		if j == len(masses)-1 {
			hi = n
		}
		pieces[j] = dist.Piece{Iv: intervals.Interval{Lo: j * w, Hi: hi}, Mass: m}
	}
	return dist.MustPiecewiseConstant(n, pieces)
}

// benchSieveWorkers runs the full tester at production scale (n = 10⁵,
// k = 8) with the derived Θ(log k) sieve replicates, the axis the
// Workers knob parallelizes. Compare
//
//	go test -bench=SieveWorkers -benchtime=3x
//
// between the Serial and Parallel variants: on a multi-core machine the
// parallel run should be well over 1.5× faster, with bit-identical
// decisions per seed (asserted below).
func benchSieveWorkers(b *testing.B, workers int) {
	const n, k = 100_000, 8
	const eps = 0.8
	cfg := core.PracticalConfig()
	cfg.SieveReps = 0 // derive Θ(log k) replicates as the paper does
	cfg.Workers = workers
	cfg.MaxSamples = 1 << 33
	d := benchEightHistogram(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := oracle.NewSampler(d, rng.New(uint64(i)*2+1))
		res, err := core.Test(s, rng.New(uint64(i)*2+2), k, eps, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Accept {
			b.Fatalf("iteration %d: 8-histogram rejected at stage %s", i, res.Trace.RejectStage)
		}
	}
}

func BenchmarkSieveWorkersSerial(b *testing.B)   { benchSieveWorkers(b, 1) }
func BenchmarkSieveWorkersParallel(b *testing.B) { benchSieveWorkers(b, 0) }

// BenchmarkCoreTestHotPath measures the steady-state cost of repeated
// tester invocations at production scale (n = 10⁵, k = 8) — the
// configuration the perf trajectory in BENCH_hotpath.json tracks (see
// `make bench-json`). Run with -benchmem; the allocs/op figure is the
// headline number.
func BenchmarkCoreTestHotPath(b *testing.B) { benchhot.CoreTestHotPath(b, 1) }

// BenchmarkCoreTestHotPathParallel is the same workload with the sieve
// replicates fanned out across all cores. The fixed-count Parallel2/4
// variants mirror the BENCH_hotpath.json entries, which pin the worker
// count so the numbers are comparable across machines.
func BenchmarkCoreTestHotPathParallel(b *testing.B)  { benchhot.CoreTestHotPath(b, 0) }
func BenchmarkCoreTestHotPathParallel2(b *testing.B) { benchhot.CoreTestHotPath(b, 2) }
func BenchmarkCoreTestHotPathParallel4(b *testing.B) { benchhot.CoreTestHotPath(b, 4) }

// BenchmarkCoreTestHotPathEngineADK / EngineCDKL22 run the same workload
// under each explicitly named tester engine — the like-for-like pair
// `make bench-gate` gates per engine. The ADK entry matches
// BenchmarkCoreTestHotPath by construction; the CDKL'22 entry has no
// sieve at all, so its wall clock is dominated by partition + learn +
// one flatness batch.
func BenchmarkCoreTestHotPathEngineADK(b *testing.B) {
	benchhot.CoreTestHotPathEngine(b, "adk", 1)
}
func BenchmarkCoreTestHotPathEngineCDKL22(b *testing.B) {
	benchhot.CoreTestHotPathEngine(b, "cdkl22", 1)
}

// BenchmarkCoreTestHotPathClosedForm is the serial workload with count
// vectors synthesized in closed form from the sampler's run structure
// (oracle.CountClosedForm) instead of drawn sample by sample.
func BenchmarkCoreTestHotPathClosedForm(b *testing.B) { benchhot.CoreTestHotPathClosedForm(b, 1) }

// BenchmarkCoreTestHotPathClosedFormParallel4 combines both engines'
// speedups: closed-form counting within each replicate, four sieve
// workers across replicates.
func BenchmarkCoreTestHotPathClosedFormParallel4(b *testing.B) {
	benchhot.CoreTestHotPathClosedForm(b, 4)
}

// BenchmarkDrawCountsPooled measures one pooled Poissonized dense batch
// draw at n = m = 10⁵ — zero allocations in steady state.
func BenchmarkDrawCountsPooled(b *testing.B) { benchhot.DrawCountsPooled(b) }

// BenchmarkDrawCountsClosedForm measures the same batch synthesized in
// O(k + occupied) RNG calls; the ratio to BenchmarkDrawCountsPooled is
// the per-batch closed-form speedup.
func BenchmarkDrawCountsClosedForm(b *testing.B) { benchhot.DrawCountsClosedForm(b) }

// BenchmarkIngestSoak and its ParallelN variants measure aggregate
// sharded-accumulator ingest throughput — the events/s numbers
// BENCH_ingest.json tracks (see `make bench-ingest-json`); N goroutines
// pour 4096-event batches into one shared accumulator.
func BenchmarkIngestSoak(b *testing.B)          { benchhot.IngestSoak(b, 1) }
func BenchmarkIngestSoakParallel2(b *testing.B) { benchhot.IngestSoak(b, 2) }
func BenchmarkIngestSoakParallel4(b *testing.B) { benchhot.IngestSoak(b, 4) }

// BenchmarkIngestDecodeBinary / NDJSON include the wire-format parsing
// in front of the accumulator — the full request-body→tally path.
func BenchmarkIngestDecodeBinary(b *testing.B) { benchhot.IngestDecodeBinary(b) }
func BenchmarkIngestDecodeNDJSON(b *testing.B) { benchhot.IngestDecodeNDJSON(b) }

// TestSieveWorkersBenchmarkDeterminism pins the benchmark's claim that
// serial and parallel runs decide identically per seed.
func TestSieveWorkersBenchmarkDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale tester run")
	}
	const n, k = 100_000, 8
	const eps = 0.8
	cfg := core.PracticalConfig()
	cfg.SieveReps = 0
	cfg.MaxSamples = 1 << 33
	d := benchEightHistogram(n)
	run := func(workers int) core.Trace {
		cfg.Workers = workers
		s := oracle.NewSampler(d, rng.New(1))
		res, err := core.Test(s, rng.New(2), k, eps, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Trace
	}
	if serial, parallel := run(1), run(0); serial != parallel {
		t.Fatalf("trace differs across workers:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
