// Command histbench regenerates the experiment tables E1–E14 (see
// DESIGN.md for the index mapping each to a paper claim).
//
// Usage:
//
//	histbench -list
//	histbench -run E1,E4
//	histbench -run all -quick -seed 7
//	histbench -run E1,E6 -engine cdkl22
//	histbench -run E6 -csv results/
//	histbench -run E7 -cpuprofile cpu.out -memprofile mem.out
//	histbench -run E6 -trace-json trace.jsonl
//	histbench -hotpath-json BENCH_hotpath.json
//	histbench -hotpath-gate BENCH_hotpath.json
//	histbench -ingest-json BENCH_ingest.json
//	histbench -ingest-gate BENCH_ingest.json
//	histbench -cover-profile cover.out -cover-json COVERAGE.json
//	histbench -cover-profile cover.out -cover-gate COVERAGE.json
//	histbench -conformance-list .
//
// -hotpath-gate re-measures the hot-path micro-benchmarks and exits 1
// when allocs/op regressed more than -hotpath-tolerance against the
// committed report (the CI perf gate; see `make bench-gate`).
// -ingest-gate does the same for the streaming-ingestion soaks,
// gating events/s downward and holding the 4-way soak to an absolute
// 1M events/s floor.
//
// -cover-gate ratchets statement coverage against the committed
// COVERAGE.json: a total or per-package drop beyond -cover-tolerance
// (default 1pt) exits 1 (see `make cover`). -conformance-list diffs the
// CONFORMANCE_ENGINES / CONFORMANCE_WORKLOADS declarations in the
// Makefile and CI workflows against the in-code registries, so the
// conformance battery cannot silently shrink when an engine or serve
// workload is added (see `make conformance-list`).
//
// ^C (or SIGTERM) cancels the run: in-flight tester invocations abort at
// their next context check, pooled buffers are released, and any partial
// trace file is flushed before exit.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/obs"
	"repro/internal/oracle"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The experiment body runs in a helper so its defers — profile
	// writers, the trace flush — run even on failure exits.
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("histbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runIDs     = fs.String("run", "all", "comma-separated experiment IDs (E1..E14) or 'all'")
		quick      = fs.Bool("quick", false, "smaller sweeps and trial counts")
		seed       = fs.Uint64("seed", 1, "random seed")
		csvDir     = fs.String("csv", "", "also write each table as CSV into this directory")
		list       = fs.Bool("list", false, "list experiments and exit")
		verbose    = fs.Bool("v", false, "print progress lines")
		workers    = fs.Int("workers", 0, "cap concurrency (trial fan-out and sieve replicates); 0 = all cores")
		cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile = fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
		hotJSON    = fs.String("hotpath-json", "", "run the hot-path micro-benchmarks and write the results as JSON to this file (skips the experiments)")
		hotGate    = fs.String("hotpath-gate", "", "re-run the hot-path micro-benchmarks and fail on an allocs/op regression against this committed report (skips the experiments)")
		hotTol     = fs.Float64("hotpath-tolerance", 0.10, "allowed fractional allocs/op regression for -hotpath-gate")
		ingJSON    = fs.String("ingest-json", "", "run the streaming-ingestion soak benchmarks and write the results as JSON to this file (skips the experiments)")
		ingGate    = fs.String("ingest-gate", "", "re-run the ingestion soaks and fail on an events/s regression — or a 4-way soak under the 1M events/s floor — against this committed report (skips the experiments)")
		coverProf  = fs.String("cover-profile", "", "a `go test -coverprofile` file to reduce; required by -cover-json and -cover-gate")
		coverJSON  = fs.String("cover-json", "", "reduce -cover-profile to per-package statement coverage and write the COVERAGE.json baseline to this file (skips the experiments)")
		coverGate  = fs.String("cover-gate", "", "ratchet -cover-profile against this committed COVERAGE.json and fail on a drop beyond -cover-tolerance (skips the experiments)")
		coverTol   = fs.Float64("cover-tolerance", 1.0, "allowed statement-coverage drop for -cover-gate, in percentage points")
		confList   = fs.String("conformance-list", "", "diff the CONFORMANCE_ENGINES/CONFORMANCE_WORKLOADS declarations under this repo root (Makefile + CI workflows) against the in-code registries and fail on drift (skips the experiments)")
		countStrat = fs.String("count-strategy", "", "Poissonized count synthesis: 'exact' (default; bit-identical historical streams) or 'closed-form' (O(k+occupied) per batch on known samplers)")
		engine     = fs.String("engine", "", "tester engine: 'adk' (default; the paper's Algorithm 1) or 'cdkl22' (the CDKL'22 near-optimal tester)")
		traceJSON  = fs.String("trace-json", "", "stream per-run stage events as JSON lines to this file (also feeds the expvar counters)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "histbench: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	// Results are deterministic per seed regardless of this cap: all
	// replicate randomness is pre-split before work is scheduled.
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "histbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "histbench: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "histbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "histbench: %v\n", err)
			}
		}()
	}

	if *hotJSON != "" {
		if err := writeHotpathJSON(*hotJSON, stderr); err != nil {
			fmt.Fprintf(stderr, "histbench: %v\n", err)
			return 1
		}
		return 0
	}
	if *hotGate != "" {
		violations, err := gateHotpath(*hotGate, *hotTol, stdout, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "histbench: %v\n", err)
			return 1
		}
		if violations > 0 {
			return 1
		}
		return 0
	}
	if *ingJSON != "" {
		if err := writeIngestJSON(*ingJSON, stderr); err != nil {
			fmt.Fprintf(stderr, "histbench: %v\n", err)
			return 1
		}
		return 0
	}
	if *ingGate != "" {
		violations, err := gateIngest(*ingGate, stdout, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "histbench: %v\n", err)
			return 1
		}
		if violations > 0 {
			return 1
		}
		return 0
	}
	if *coverJSON != "" || *coverGate != "" {
		if *coverProf == "" {
			fmt.Fprintln(stderr, "histbench: -cover-json/-cover-gate need -cover-profile (run `go test -coverprofile` first)")
			return 2
		}
		if *coverJSON != "" {
			if err := writeCoverageJSON(*coverProf, *coverJSON, stderr); err != nil {
				fmt.Fprintf(stderr, "histbench: %v\n", err)
				return 1
			}
			return 0
		}
		violations, err := gateCoverage(*coverProf, *coverGate, *coverTol, stdout, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "histbench: %v\n", err)
			return 1
		}
		if violations > 0 {
			return 1
		}
		return 0
	}
	if *confList != "" {
		violations, err := gateConformanceLists(*confList, stdout, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "histbench: %v\n", err)
			return 1
		}
		if violations > 0 {
			return 1
		}
		return 0
	}

	if *list {
		for _, e := range exper.Registry() {
			fmt.Fprintf(stdout, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return 0
	}

	var selected []exper.Experiment
	if *runIDs == "all" {
		selected = exper.Registry()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := exper.ByID(id)
			if !ok {
				fmt.Fprintf(stderr, "histbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	cs, err := oracle.ParseCountStrategy(*countStrat)
	if err != nil {
		fmt.Fprintf(stderr, "histbench: %v\n", err)
		return 2
	}
	if _, err := core.EngineFor(*engine); err != nil {
		fmt.Fprintf(stderr, "histbench: %v\n", err)
		return 2
	}
	rc := exper.RunConfig{Seed: *seed, Quick: *quick, Ctx: ctx, CountStrategy: cs, Engine: *engine}
	if *verbose {
		rc.Progress = stderr
	}
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err != nil {
			fmt.Fprintf(stderr, "histbench: %v\n", err)
			return 1
		}
		bw := bufio.NewWriter(f)
		jl := obs.NewJSONLines(bw)
		defer func() {
			// Flush whatever was traced, even when an experiment failed or
			// the run was interrupted — a partial trace is still evidence.
			if err := jl.Err(); err != nil {
				fmt.Fprintf(stderr, "histbench: trace: %v\n", err)
			}
			if err := bw.Flush(); err != nil {
				fmt.Fprintf(stderr, "histbench: trace: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(stderr, "histbench: trace: %v\n", err)
			}
		}()
		rc.Observer = obs.Multi(jl, obs.Expvar())
	}

	for _, e := range selected {
		fmt.Fprintf(stdout, "=== %s: %s ===\nclaim: %s\n\n", e.ID, e.Title, e.Claim)
		tables, err := e.Run(rc)
		if err != nil {
			fmt.Fprintf(stderr, "histbench: %s failed: %v\n", e.ID, err)
			return 1
		}
		for i, tb := range tables {
			if err := tb.Render(stdout); err != nil {
				fmt.Fprintf(stderr, "histbench: render: %v\n", err)
				return 1
			}
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintf(stderr, "histbench: %v\n", err)
					return 1
				}
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), i+1)
				f, err := os.Create(filepath.Join(*csvDir, name))
				if err != nil {
					fmt.Fprintf(stderr, "histbench: %v\n", err)
					return 1
				}
				if err := tb.RenderCSV(f); err != nil {
					f.Close()
					fmt.Fprintf(stderr, "histbench: %v\n", err)
					return 1
				}
				if err := f.Close(); err != nil {
					fmt.Fprintf(stderr, "histbench: %v\n", err)
					return 1
				}
			}
		}
	}
	return 0
}
