// Command histbench regenerates the experiment tables E1–E13 (see
// DESIGN.md for the index mapping each to a paper claim).
//
// Usage:
//
//	histbench -list
//	histbench -run E1,E4
//	histbench -run all -quick -seed 7
//	histbench -run E6 -csv results/
//	histbench -run E7 -cpuprofile cpu.out -memprofile mem.out
//	histbench -run E6 -trace-json trace.jsonl
//	histbench -hotpath-json BENCH_hotpath.json
//
// ^C (or SIGTERM) cancels the run: in-flight tester invocations abort at
// their next context check, pooled buffers are released, and any partial
// trace file is flushed before exit.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"repro/internal/exper"
	"repro/internal/obs"
)

func main() {
	// The experiment body runs in a helper so its defers — profile
	// writers, the trace flush — run even on failure exits.
	os.Exit(run())
}

func run() int {
	var (
		runIDs     = flag.String("run", "all", "comma-separated experiment IDs (E1..E10) or 'all'")
		quick      = flag.Bool("quick", false, "smaller sweeps and trial counts")
		seed       = flag.Uint64("seed", 1, "random seed")
		csvDir     = flag.String("csv", "", "also write each table as CSV into this directory")
		list       = flag.Bool("list", false, "list experiments and exit")
		verbose    = flag.Bool("v", false, "print progress lines")
		workers    = flag.Int("workers", 0, "cap concurrency (trial fan-out and sieve replicates); 0 = all cores")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		hotJSON    = flag.String("hotpath-json", "", "run the hot-path micro-benchmarks and write the results as JSON to this file (skips the experiments)")
		traceJSON  = flag.String("trace-json", "", "stream per-run stage events as JSON lines to this file (also feeds the expvar counters)")
	)
	flag.Parse()

	// Results are deterministic per seed regardless of this cap: all
	// replicate randomness is pre-split before work is scheduled.
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "histbench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "histbench: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "histbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "histbench: %v\n", err)
			}
		}()
	}

	if *hotJSON != "" {
		if err := writeHotpathJSON(*hotJSON); err != nil {
			fmt.Fprintf(os.Stderr, "histbench: %v\n", err)
			return 1
		}
		return 0
	}

	if *list {
		for _, e := range exper.Registry() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return 0
	}

	var selected []exper.Experiment
	if *runIDs == "all" {
		selected = exper.Registry()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := exper.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "histbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rc := exper.RunConfig{Seed: *seed, Quick: *quick, Ctx: ctx}
	if *verbose {
		rc.Progress = os.Stderr
	}
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "histbench: %v\n", err)
			return 1
		}
		bw := bufio.NewWriter(f)
		jl := obs.NewJSONLines(bw)
		defer func() {
			// Flush whatever was traced, even when an experiment failed or
			// the run was interrupted — a partial trace is still evidence.
			if err := jl.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "histbench: trace: %v\n", err)
			}
			if err := bw.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "histbench: trace: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "histbench: trace: %v\n", err)
			}
		}()
		rc.Observer = obs.Multi(jl, obs.Expvar())
	}

	for _, e := range selected {
		fmt.Printf("=== %s: %s ===\nclaim: %s\n\n", e.ID, e.Title, e.Claim)
		tables, err := e.Run(rc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "histbench: %s failed: %v\n", e.ID, err)
			return 1
		}
		for i, tb := range tables {
			if err := tb.Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "histbench: render: %v\n", err)
				return 1
			}
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "histbench: %v\n", err)
					return 1
				}
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), i+1)
				f, err := os.Create(filepath.Join(*csvDir, name))
				if err != nil {
					fmt.Fprintf(os.Stderr, "histbench: %v\n", err)
					return 1
				}
				if err := tb.RenderCSV(f); err != nil {
					f.Close()
					fmt.Fprintf(os.Stderr, "histbench: %v\n", err)
					return 1
				}
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "histbench: %v\n", err)
					return 1
				}
			}
		}
	}
	return 0
}
