package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/internal/benchhot"
	"repro/internal/cli"
)

// ingestGateTolerance is the fractional events/s drop the ingest gate
// allows between like-for-like entries. Wider than the hot-path ns
// tolerance: throughput soaks are the noisiest numbers we gate, and the
// absolute 1M events/s floor backstops the 4-way entry regardless.
const ingestGateTolerance = 0.30

// measureIngest runs the streaming-ingestion soak benchmarks and
// returns a fresh report. Parallel entries run with GOMAXPROCS raised
// to the recorded value (timeshared on smaller machines, as the note
// states), same discipline as the hot-path report.
func measureIngest(stderr io.Writer) cli.IngestReport {
	run := func(name string, procs int, body func(b *testing.B)) cli.IngestResult {
		fmt.Fprintf(stderr, "running %s (gomaxprocs %d)...\n", name, procs)
		r := benchAt(procs, body)
		return cli.IngestResult{
			Iterations:   r.N,
			EventsPerSec: r.Extra["events/s"],
			NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp:  r.AllocsPerOp(),
			GOMAXPROCS:   procs,
			Note:         measuredNote(procs),
		}
	}
	return cli.IngestReport{
		Schema:   cli.IngestSchema,
		Go:       runtime.Version(),
		Workload: "sharded accumulator ingest, domain 2^16 dense, 4096-event batches; Soak entries share one accumulator across N goroutines, Decode entries include wire parsing",
		Results: map[string]cli.IngestResult{
			"BenchmarkIngestSoak": run("BenchmarkIngestSoak", 1,
				func(b *testing.B) { benchhot.IngestSoak(b, 1) }),
			"BenchmarkIngestSoakParallel2": run("BenchmarkIngestSoakParallel2", 2,
				func(b *testing.B) { benchhot.IngestSoak(b, 2) }),
			"BenchmarkIngestSoakParallel4": run("BenchmarkIngestSoakParallel4", 4,
				func(b *testing.B) { benchhot.IngestSoak(b, 4) }),
			"BenchmarkIngestDecodeBinary": run("BenchmarkIngestDecodeBinary", 1,
				benchhot.IngestDecodeBinary),
			"BenchmarkIngestDecodeNDJSON": run("BenchmarkIngestDecodeNDJSON", 1,
				benchhot.IngestDecodeNDJSON),
		},
	}
}

func writeIngestJSON(path string, stderr io.Writer) error {
	rep := measureIngest(stderr)
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}

// gateIngest is the CI throughput gate: re-measure the ingest soaks and
// fail when events/s fell more than ingestGateTolerance below the
// committed report at path (like-for-like gomaxprocs only), or when a
// 4-way entry dropped under the absolute 1M events/s floor. Returns the
// number of violations.
func gateIngest(path string, stdout, stderr io.Writer) (int, error) {
	committed, err := cli.LoadIngestReport(path)
	if err != nil {
		return 0, err
	}
	fresh := measureIngest(stderr)
	violations, skipped := cli.CompareIngest(committed.Results, fresh.Results, ingestGateTolerance, cli.IngestFloorEventsPerSec)
	for _, s := range skipped {
		fmt.Fprintf(stderr, "histbench: ingest gate: %s\n", s)
	}
	for _, v := range violations {
		fmt.Fprintf(stderr, "histbench: ingest gate: %s\n", v)
	}
	if len(violations) == 0 {
		fmt.Fprintf(stdout, "ingest gate: %d benchmark(s) within %.0f%% events/s of %s, 4-way soak above the %.0fM events/s floor (%d comparison(s) skipped as not like-for-like)\n",
			len(committed.Results)-len(skipped), ingestGateTolerance*100, path, cli.IngestFloorEventsPerSec/1e6, len(skipped))
	}
	return len(violations), nil
}
