package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/benchhot"
)

// benchResult is one benchmark line of BENCH_hotpath.json.
type benchResult struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Note        string  `json:"note,omitempty"`
}

// hotpathReport is the schema of BENCH_hotpath.json. Baseline holds the
// pre-pooling numbers recorded once (PR 2, before the arena/pool work
// landed) so regeneration via `make bench-json` preserves the reference
// point the current numbers are compared against.
type hotpathReport struct {
	Schema     string                 `json:"schema"`
	Go         string                 `json:"go"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Workload   string                 `json:"workload"`
	Baseline   map[string]benchResult `json:"baseline_pre_pooling"`
	Results    map[string]benchResult `json:"results"`
}

// prPooledBaseline is BenchmarkCoreTestHotPath measured on the commit
// immediately before the scratch-arena/pool refactor. These constants are
// deliberately frozen in source: the JSON file is regenerated on every
// `make bench-json`, and the before/after comparison only means something
// if "before" does not move.
var prPooledBaseline = map[string]benchResult{
	"BenchmarkCoreTestHotPath": {
		Iterations:  5,
		NsPerOp:     954484689,
		BytesPerOp:  14486099,
		AllocsPerOp: 1691,
		Note:        "pre-pooling baseline, recorded at PR 2 (before arena/pool refactor)",
	},
}

func writeHotpathJSON(path string) error {
	run := func(name string, body func(b *testing.B)) benchResult {
		fmt.Fprintf(os.Stderr, "running %s...\n", name)
		r := testing.Benchmark(body)
		return benchResult{
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
	}
	rep := hotpathReport{
		Schema:     "histbench-hotpath/v1",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workload:   "core.Test on an 8-histogram, n=1e5, k=8, eps=0.8, PracticalConfig, shared Arena + shared alias-table prototype",
		Baseline:   prPooledBaseline,
		Results: map[string]benchResult{
			"BenchmarkCoreTestHotPath": run("BenchmarkCoreTestHotPath",
				func(b *testing.B) { benchhot.CoreTestHotPath(b, 1) }),
			"BenchmarkCoreTestHotPathParallel": run("BenchmarkCoreTestHotPathParallel",
				func(b *testing.B) { benchhot.CoreTestHotPath(b, 0) }),
			"BenchmarkDrawCountsPooled": run("BenchmarkDrawCountsPooled",
				benchhot.DrawCountsPooled),
		},
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}
