package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/internal/benchhot"
	"repro/internal/cli"
)

// prPooledBaseline is BenchmarkCoreTestHotPath measured on the commit
// immediately before the scratch-arena/pool refactor. These constants are
// deliberately frozen in source: the JSON file is regenerated on every
// `make bench-json`, and the before/after comparison only means something
// if "before" does not move.
var prPooledBaseline = map[string]cli.HotpathResult{
	"BenchmarkCoreTestHotPath": {
		Iterations:  5,
		NsPerOp:     954484689,
		BytesPerOp:  14486099,
		AllocsPerOp: 1691,
		GOMAXPROCS:  1,
		Note:        "pre-pooling baseline, recorded at PR 2 (before arena/pool refactor)",
	},
}

// nsGateTolerance is the fractional ns/op regression the perf gate
// allows between like-for-like (same gomaxprocs) entries. Wider than the
// allocs/op tolerance because wall clock is noisy on shared runners.
const nsGateTolerance = 0.15

// measureHotpath runs the hot-path micro-benchmarks and returns a fresh
// report, logging progress to stderr. Each entry records the EFFECTIVE
// parallelism of its benchmark body: the serial hot path and the
// single-batch draws always run one worker; the ParallelN variants ask
// for N sieve workers and record min(N, GOMAXPROCS) — a machine with
// fewer cores than the variant wants still produces the entry, just
// marked with the parallelism it could actually deliver, so the gate
// skips (and reports) the comparison instead of flagging a phantom
// regression or a missing benchmark.
func measureHotpath(stderr io.Writer) cli.HotpathReport {
	run := func(name string, procs int, body func(b *testing.B)) cli.HotpathResult {
		fmt.Fprintf(stderr, "running %s...\n", name)
		r := testing.Benchmark(body)
		return cli.HotpathResult{
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			GOMAXPROCS:  procs,
		}
	}
	effective := func(workers int) int {
		return min(workers, runtime.GOMAXPROCS(0))
	}
	return cli.HotpathReport{
		Schema:   cli.HotpathSchema,
		Go:       runtime.Version(),
		Workload: "core.Test on an 8-histogram, n=1e5, k=8, eps=0.8, PracticalConfig, shared Arena + shared alias-table prototype",
		Baseline: prPooledBaseline,
		Results: map[string]cli.HotpathResult{
			"BenchmarkCoreTestHotPath": run("BenchmarkCoreTestHotPath", 1,
				func(b *testing.B) { benchhot.CoreTestHotPath(b, 1) }),
			"BenchmarkCoreTestHotPathParallel2": run("BenchmarkCoreTestHotPathParallel2", effective(2),
				func(b *testing.B) { benchhot.CoreTestHotPath(b, 2) }),
			"BenchmarkCoreTestHotPathParallel4": run("BenchmarkCoreTestHotPathParallel4", effective(4),
				func(b *testing.B) { benchhot.CoreTestHotPath(b, 4) }),
			"BenchmarkCoreTestHotPathClosedForm": run("BenchmarkCoreTestHotPathClosedForm", 1,
				func(b *testing.B) { benchhot.CoreTestHotPathClosedForm(b, 1) }),
			"BenchmarkCoreTestHotPathClosedFormParallel4": run("BenchmarkCoreTestHotPathClosedFormParallel4", effective(4),
				func(b *testing.B) { benchhot.CoreTestHotPathClosedForm(b, 4) }),
			"BenchmarkDrawCountsPooled": run("BenchmarkDrawCountsPooled", 1,
				benchhot.DrawCountsPooled),
			"BenchmarkDrawCountsClosedForm": run("BenchmarkDrawCountsClosedForm", 1,
				benchhot.DrawCountsClosedForm),
		},
	}
}

func writeHotpathJSON(path string, stderr io.Writer) error {
	rep := measureHotpath(stderr)
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}

// gateHotpath is the CI perf gate: re-measure the hot-path benchmarks
// and fail when allocs/op regressed more than tolerance — or ns/op more
// than nsGateTolerance — against the committed report at path, comparing
// only entries measured at equal gomaxprocs. Returns the number of
// violations.
func gateHotpath(path string, tolerance float64, stdout, stderr io.Writer) (int, error) {
	committed, err := cli.LoadHotpathReport(path)
	if err != nil {
		return 0, err
	}
	fresh := measureHotpath(stderr)
	violations, skipped := cli.CompareHotpath(committed.Results, fresh.Results, tolerance, nsGateTolerance)
	for _, s := range skipped {
		fmt.Fprintf(stderr, "histbench: perf gate: %s\n", s)
	}
	for _, v := range violations {
		fmt.Fprintf(stderr, "histbench: perf gate: %s\n", v)
	}
	if len(violations) == 0 {
		fmt.Fprintf(stdout, "perf gate: %d benchmark(s) within %.0f%% allocs / %.0f%% ns of %s (%d comparison(s) skipped as not like-for-like)\n",
			len(committed.Results)-len(skipped), tolerance*100, nsGateTolerance*100, path, len(skipped))
	}
	return len(violations), nil
}
