package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/internal/benchhot"
	"repro/internal/cli"
)

// prPooledBaseline is BenchmarkCoreTestHotPath measured on the commit
// immediately before the scratch-arena/pool refactor. These constants are
// deliberately frozen in source: the JSON file is regenerated on every
// `make bench-json`, and the before/after comparison only means something
// if "before" does not move.
var prPooledBaseline = map[string]cli.HotpathResult{
	"BenchmarkCoreTestHotPath": {
		Iterations:  5,
		NsPerOp:     954484689,
		BytesPerOp:  14486099,
		AllocsPerOp: 1691,
		GOMAXPROCS:  1,
		Note:        "pre-pooling baseline, recorded at PR 2 (before arena/pool refactor)",
	},
}

// nsGateTolerance is the fractional ns/op regression the perf gate
// allows between like-for-like (same gomaxprocs) entries. Wider than the
// allocs/op tolerance because wall clock is noisy on shared runners.
const nsGateTolerance = 0.15

// benchAt runs one benchmark body with GOMAXPROCS raised to procs for
// the duration of the run, restoring the previous setting after. Raising
// (rather than clamping to the core count) is what makes the ParallelN
// entries MEASURED everywhere: a machine with fewer cores than the
// variant wants still runs the real N-worker schedule, timeshared — a
// genuine wall-clock measurement of that fan-out on that machine, and
// the note records the hardware so a reader never mistakes a timeshared
// number for a parallel speedup.
func benchAt(procs int, body func(b *testing.B)) testing.BenchmarkResult {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	return testing.Benchmark(body)
}

// measuredNote describes the conditions one entry was measured under.
func measuredNote(procs int) string {
	if hw := runtime.NumCPU(); procs > hw {
		return fmt.Sprintf("measured at gomaxprocs %d timeshared over %d hardware thread(s): real schedule, no parallel speedup available; regenerate on a >=%d-core machine for a contention-free reference", procs, hw, procs)
	}
	return fmt.Sprintf("measured at gomaxprocs %d, %d hardware thread(s)", procs, runtime.NumCPU())
}

// measureHotpath runs the hot-path micro-benchmarks and returns a fresh
// report, logging progress to stderr. Each entry is MEASURED at the
// parallelism it records: serial bodies at gomaxprocs 1, the ParallelN
// variants with GOMAXPROCS raised to N around the benchmark (timeshared
// when the machine has fewer cores — the note says so). No entry is ever
// projected from a model; the Projected flag exists so old reports that
// did project can be recognized and reported as unverified by the gate.
func measureHotpath(stderr io.Writer) cli.HotpathReport {
	run := func(name string, procs int, body func(b *testing.B)) cli.HotpathResult {
		fmt.Fprintf(stderr, "running %s (gomaxprocs %d)...\n", name, procs)
		r := benchAt(procs, body)
		return cli.HotpathResult{
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			GOMAXPROCS:  procs,
			Note:        measuredNote(procs),
		}
	}
	return cli.HotpathReport{
		Schema:   cli.HotpathSchema,
		Go:       runtime.Version(),
		Workload: "core.Test on an 8-histogram, n=1e5, k=8, eps=0.8, PracticalConfig, shared Arena + shared alias-table prototype",
		Baseline: prPooledBaseline,
		Results: map[string]cli.HotpathResult{
			"BenchmarkCoreTestHotPath": run("BenchmarkCoreTestHotPath", 1,
				func(b *testing.B) { benchhot.CoreTestHotPath(b, 1) }),
			"BenchmarkCoreTestHotPathParallel2": run("BenchmarkCoreTestHotPathParallel2", 2,
				func(b *testing.B) { benchhot.CoreTestHotPath(b, 2) }),
			"BenchmarkCoreTestHotPathParallel4": run("BenchmarkCoreTestHotPathParallel4", 4,
				func(b *testing.B) { benchhot.CoreTestHotPath(b, 4) }),
			"BenchmarkCoreTestHotPathEngineADK": run("BenchmarkCoreTestHotPathEngineADK", 1,
				func(b *testing.B) { benchhot.CoreTestHotPathEngine(b, "adk", 1) }),
			"BenchmarkCoreTestHotPathEngineCDKL22": run("BenchmarkCoreTestHotPathEngineCDKL22", 1,
				func(b *testing.B) { benchhot.CoreTestHotPathEngine(b, "cdkl22", 1) }),
			"BenchmarkCoreTestHotPathClosedForm": run("BenchmarkCoreTestHotPathClosedForm", 1,
				func(b *testing.B) { benchhot.CoreTestHotPathClosedForm(b, 1) }),
			"BenchmarkCoreTestHotPathClosedFormParallel4": run("BenchmarkCoreTestHotPathClosedFormParallel4", 4,
				func(b *testing.B) { benchhot.CoreTestHotPathClosedForm(b, 4) }),
			"BenchmarkDrawCountsPooled": run("BenchmarkDrawCountsPooled", 1,
				benchhot.DrawCountsPooled),
			"BenchmarkDrawCountsClosedForm": run("BenchmarkDrawCountsClosedForm", 1,
				benchhot.DrawCountsClosedForm),
		},
	}
}

func writeHotpathJSON(path string, stderr io.Writer) error {
	rep := measureHotpath(stderr)
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	return os.WriteFile(path, buf, 0o644)
}

// gateHotpath is the CI perf gate: re-measure the hot-path benchmarks
// and fail when allocs/op regressed more than tolerance — or ns/op more
// than nsGateTolerance — against the committed report at path, comparing
// only entries measured at equal gomaxprocs. Returns the number of
// violations.
func gateHotpath(path string, tolerance float64, stdout, stderr io.Writer) (int, error) {
	committed, err := cli.LoadHotpathReport(path)
	if err != nil {
		return 0, err
	}
	fresh := measureHotpath(stderr)
	violations, skipped, unverified := cli.CompareHotpath(committed.Results, fresh.Results, tolerance, nsGateTolerance)
	for _, u := range unverified {
		fmt.Fprintf(stderr, "histbench: perf gate: %s\n", u)
	}
	for _, s := range skipped {
		fmt.Fprintf(stderr, "histbench: perf gate: %s\n", s)
	}
	for _, v := range violations {
		fmt.Fprintf(stderr, "histbench: perf gate: %s\n", v)
	}
	if len(violations) == 0 {
		fmt.Fprintf(stdout, "perf gate: %d benchmark(s) within %.0f%% allocs / %.0f%% ns of %s (%d skipped as not like-for-like, %d unverified projected baseline(s))\n",
			len(committed.Results)-len(skipped)-len(unverified), tolerance*100, nsGateTolerance*100, path, len(skipped), len(unverified))
	}
	return len(violations), nil
}
