package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/serve"
)

// writeCoverageJSON reduces a `go test -coverprofile` file to the
// committed COVERAGE.json ratchet baseline.
func writeCoverageJSON(profilePath, outPath string, stderr io.Writer) error {
	f, err := os.Open(profilePath)
	if err != nil {
		return err
	}
	defer f.Close()
	rep, err := cli.ParseCoverProfile(f)
	if err != nil {
		return err
	}
	payload, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(payload, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "histbench: wrote %s (total %.2f%%, %d packages)\n", outPath, rep.Total, len(rep.Packages))
	return nil
}

// gateCoverage ratchets a fresh coverprofile against the committed
// baseline: >tolerancePts drops (total or per-package) fail the gate.
func gateCoverage(profilePath, baselinePath string, tolerancePts float64, stdout, stderr io.Writer) (int, error) {
	baseline, err := cli.LoadCoverageReport(baselinePath)
	if err != nil {
		return 0, err
	}
	f, err := os.Open(profilePath)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	current, err := cli.ParseCoverProfile(f)
	if err != nil {
		return 0, err
	}

	violations, deltas, notes := cli.CompareCoverage(baseline, current, tolerancePts)
	fmt.Fprintf(stdout, "coverage vs %s (tolerance %.1fpt):\n", baselinePath, tolerancePts)
	for _, d := range deltas {
		fmt.Fprintf(stdout, "  %s\n", d)
	}
	for _, n := range notes {
		fmt.Fprintf(stdout, "  note: %s\n", n)
	}
	for _, v := range violations {
		fmt.Fprintf(stderr, "COVERAGE RATCHET VIOLATION: %s\n", v)
	}
	if len(violations) == 0 {
		fmt.Fprintf(stdout, "coverage ratchet: OK (total %.2f%% vs floor %.2f%%)\n",
			current.Total, baseline.Total-tolerancePts)
	}
	return len(violations), nil
}

// gateConformanceLists diffs every declared conformance list under root
// — the Makefile defaults and every CI workflow occurrence — against the
// in-code registries: core.Engines() for CONFORMANCE_ENGINES and
// serve.Workloads() for CONFORMANCE_WORKLOADS. A declaration that has
// drifted from the registry, or a file that stopped declaring the list
// at all, fails the gate.
func gateConformanceLists(root string, stdout, stderr io.Writer) (int, error) {
	var violations []string

	gather := func(varName string, registry []string) error {
		makefilePath := filepath.Join(root, "Makefile")
		makefile, err := os.ReadFile(makefilePath)
		if err != nil {
			return err
		}
		declared := cli.DeclaredLists("Makefile", string(makefile), varName)
		if len(declared) == 0 {
			violations = append(violations,
				fmt.Sprintf("Makefile: no %s declaration (the conformance battery has no pinned list)", varName))
		}

		workflows, err := filepath.Glob(filepath.Join(root, ".github", "workflows", "*.yml"))
		if err != nil {
			return err
		}
		inWorkflows := 0
		for _, wf := range workflows {
			payload, err := os.ReadFile(wf)
			if err != nil {
				return err
			}
			lists := cli.DeclaredLists(filepath.Base(wf), string(payload), varName)
			inWorkflows += len(lists)
			declared = append(declared, lists...)
		}
		if inWorkflows == 0 {
			violations = append(violations,
				fmt.Sprintf("ci workflows: no %s occurrence — CI would keep passing after the Makefile default drifts", varName))
		}

		violations = append(violations, cli.ListDrift(registry, declared)...)
		for _, d := range declared {
			fmt.Fprintf(stdout, "  %s = %v\n", d.Source, d.Names)
		}
		return nil
	}

	fmt.Fprintf(stdout, "conformance engine lists (registry: %v):\n", core.Engines())
	if err := gather("CONFORMANCE_ENGINES", core.Engines()); err != nil {
		return 0, err
	}
	fmt.Fprintf(stdout, "conformance workload lists (registry: %v):\n", serve.Workloads())
	if err := gather("CONFORMANCE_WORKLOADS", serve.Workloads()); err != nil {
		return 0, err
	}

	for _, v := range violations {
		fmt.Fprintf(stderr, "CONFORMANCE LIST DRIFT: %s\n", v)
	}
	if len(violations) == 0 {
		fmt.Fprintln(stdout, "conformance lists: OK (Makefile, CI workflows, and registries agree)")
	}
	return len(violations), nil
}
