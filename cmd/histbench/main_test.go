package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/cli"
)

func runCmd(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(context.Background(), args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListFlag(t *testing.T) {
	code, out, _ := runCmd("-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, id := range []string{"E1", "E6", "claim:"} {
		if !strings.Contains(out, id) {
			t.Fatalf("-list output missing %q:\n%s", id, out)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"bad flag value", []string{"-workers", "two"}},
		{"positional args", []string{"stray"}},
		{"unknown experiment", []string{"-run", "E99"}},
		{"unknown engine", []string{"-run", "E1", "-engine", "adk2"}},
		{"engine case-sensitive", []string{"-run", "E1", "-engine", "ADK"}},
	}
	for _, tc := range cases {
		if code, _, _ := runCmd(tc.args...); code != 2 {
			t.Errorf("%s: run(%v) = %d, want 2", tc.name, tc.args, code)
		}
	}
	// The unknown-engine refusal must name the registered engines, so the
	// operator can self-correct without reading source.
	if _, _, errb := runCmd("-run", "E1", "-engine", "adk2"); !strings.Contains(errb, "adk") || !strings.Contains(errb, "cdkl22") {
		t.Errorf("unknown-engine error does not list the registry: %q", errb)
	}
}

// TestEngineFlagSelectsEngine runs the cheapest experiment under each
// registered engine: the flag must reach core.Config.Engine (the cdkl22
// run would fail loudly if the dispatch fell back to the default while
// claiming otherwise — its trace has no sieve rounds).
func TestEngineFlagSelectsEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (quick) experiment per engine")
	}
	for _, engine := range []string{"adk", "cdkl22"} {
		trace := filepath.Join(t.TempDir(), engine+".jsonl")
		code, out, errb := runCmd("-run", "E1", "-quick", "-engine", engine, "-trace-json", trace)
		if code != 0 {
			t.Fatalf("engine %s: exited %d:\n%s", engine, code, errb)
		}
		if !strings.Contains(out, "=== E1") {
			t.Fatalf("engine %s: missing experiment header:\n%s", engine, out)
		}
		payload, err := os.ReadFile(trace)
		if err != nil {
			t.Fatalf("engine %s: reading trace: %v", engine, err)
		}
		hasSieve := strings.Contains(string(payload), `"sieve-round"`)
		if engine == "adk" && !hasSieve {
			t.Fatalf("adk trace has no sieve rounds — engine flag not honored")
		}
		if engine == "cdkl22" && hasSieve {
			t.Fatalf("cdkl22 trace has sieve rounds — engine flag silently fell back to adk")
		}
	}
}

// TestQuickExperimentWithWorkersAndTrace covers the -workers and
// -trace-json wiring on the cheapest experiment.
func TestQuickExperimentWithWorkersAndTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (quick) experiment")
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	code, out, errb := runCmd("-run", "E1", "-quick", "-workers", "2", "-trace-json", trace, "-v")
	if code != 0 {
		t.Fatalf("quick E1 exited %d:\n%s", code, errb)
	}
	if !strings.Contains(out, "=== E1") {
		t.Fatalf("missing experiment header:\n%s", out)
	}
	if runtime.GOMAXPROCS(0) != 2 {
		t.Fatalf("-workers 2 did not cap GOMAXPROCS (got %d)", runtime.GOMAXPROCS(0))
	}
	payload, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	for _, kind := range []string{`"run-start"`, `"run-end"`} {
		if !strings.Contains(string(payload), kind) {
			t.Fatalf("trace missing %s events", kind)
		}
	}
}

// The gate's full measure-and-compare pass takes ~10s of benchmarking, so
// tests cover the failure plumbing and the comparator is unit-tested in
// internal/cli; `make bench-gate` exercises the full path.
func TestHotpathGateBadInputs(t *testing.T) {
	if code, _, errb := runCmd("-hotpath-gate", "no-such-file.json"); code != 1 || !strings.Contains(errb, "no-such-file.json") {
		t.Fatalf("missing report: code %d, stderr %q", code, errb)
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	payload, _ := json.Marshal(cli.HotpathReport{Schema: "other/v0"})
	os.WriteFile(bad, payload, 0o644)
	if code, _, errb := runCmd("-hotpath-gate", bad); code != 1 || !strings.Contains(errb, "schema") {
		t.Fatalf("bad schema: code %d, stderr %q", code, errb)
	}
}
