// Command histd serves the k-histogram tester over HTTP/JSON: a bounded
// worker pool runs tester requests (recorded datasets or registered
// sampler specs) with admission control, per-request deadlines, and
// graceful drain on SIGTERM.
//
// Usage:
//
//	histd -addr :8765
//	histd -addr :8765 -workers 8 -queue 32 -timeout 30s
//	histd -addr :8765 -trace-json traces.jsonl
//
// Endpoints (see repro/histtest/client for the wire types and a typed
// Go client):
//
//	POST /v1/test         run the tester once
//	POST /v1/test/stream  run a batch, results streamed as JSON lines
//	POST /v1/closeness    two-sample closeness: are two sources serving
//	                      the same distribution? (see -closeness-reps)
//	POST /v1/samplers     register a distribution spec for reuse
//	POST /v1/streams      register an ingestion stream (see -max-streams)
//	POST /v1/streams/{id}/events  ingest raw events (ndjson or binary)
//	POST /v1/streams/{id}/test    test the stream's accumulated counts
//	GET  /healthz         readiness (503 once draining)
//	GET  /debug/vars      live expvar counters (histd.*, histtest.*)
//
// On SIGTERM (or ^C) the server drains: /healthz flips to 503, new
// requests are rejected, and in-flight runs get -drain-timeout to finish
// before being cancelled at their next sieve-round boundary.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: flags and wiring, with the process
// lifetime bound to ctx (cancellation triggers the graceful drain).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("histd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "localhost:8765", "listen address")
		workers      = fs.Int("workers", 0, "worker pool size (concurrent tester runs); 0 = all cores")
		queue        = fs.Int("queue", 0, "admission queue depth beyond the running workers; 0 = 2x workers")
		timeout      = fs.Duration("timeout", 30*time.Second, "default per-request deadline (requests may lower it; 0 disables)")
		maxTimeout   = fs.Duration("max-timeout", 5*time.Minute, "upper clamp on request-supplied deadlines")
		sieveWorkers = fs.Int("sieve-workers", 0, "max within-request sieve fan-out a request may ask for; 0 = cores/workers (caps aggregate fan-out at all cores), negative = serial")
		retryAfter   = fs.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
		drainT       = fs.Duration("drain-timeout", 15*time.Second, "how long in-flight runs may finish after SIGTERM before being cancelled")
		maxBody      = fs.Int64("max-body", 1<<26, "request body size limit in bytes")
		traceJSON    = fs.String("trace-json", "", "stream per-request stage events as JSON lines to this file")
		maxStreams   = fs.Int("max-streams", 0, "max live ingestion streams across all tenants; 0 = 256")
		tenantQuota  = fs.Int("tenant-streams", 0, "max live ingestion streams per tenant; 0 = 32")
		streamTTL    = fs.Duration("stream-ttl", 0, "evict ingestion streams idle this long; 0 = 15m")
		ingestQueue  = fs.Int("ingest-queue", 0, "max concurrently decoding ingest batches before 429 pushback; 0 = 2x workers")
		closeReps    = fs.Int("closeness-reps", 0, "default majority-amplification replicates for /v1/closeness runs; 0 = 5, negative = single-shot")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "histd: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	cfg := serve.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		SieveWorkers:      *sieveWorkers,
		RetryAfter:        *retryAfter,
		MaxBodyBytes:      *maxBody,
		MaxStreams:        *maxStreams,
		StreamTenantQuota: *tenantQuota,
		StreamTTL:         *streamTTL,
		IngestQueue:       *ingestQueue,
		ClosenessReps:     *closeReps,
	}
	if *timeout == 0 {
		cfg.DefaultTimeout = -1 // serve treats negative as "no default deadline"
	}
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err != nil {
			fmt.Fprintf(stderr, "histd: %v\n", err)
			return 1
		}
		bw := bufio.NewWriter(f)
		jl := obs.NewJSONLines(bw)
		defer func() {
			if err := jl.Err(); err != nil {
				fmt.Fprintf(stderr, "histd: trace: %v\n", err)
			}
			if err := bw.Flush(); err != nil {
				fmt.Fprintf(stderr, "histd: trace: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(stderr, "histd: trace: %v\n", err)
			}
		}()
		cfg.Observer = jl
	}

	srv := serve.New(cfg)
	httpSrv := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "histd: %v\n", err)
		srv.Close()
		return 1
	}
	// The resolved address line is load-bearing for -addr :0 (tests and
	// scripts parse it to find the port).
	fmt.Fprintf(stderr, "histd: listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		srv.Close()
		fmt.Fprintf(stderr, "histd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: flip readiness first so load balancers stop
	// routing, then stop accepting and give in-flight runs the drain
	// budget; on expiry the pool hard-cancels through the testers'
	// context checks.
	fmt.Fprintf(stderr, "histd: draining (up to %s)\n", *drainT)
	srv.StartDraining()
	dctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(dctx)
	drainErr := srv.Drain(dctx)
	switch {
	case shutdownErr != nil && !errors.Is(shutdownErr, context.DeadlineExceeded):
		fmt.Fprintf(stderr, "histd: shutdown: %v\n", shutdownErr)
		return 1
	case errors.Is(drainErr, context.DeadlineExceeded) || errors.Is(shutdownErr, context.DeadlineExceeded):
		fmt.Fprintln(stderr, "histd: drain deadline hit; in-flight runs were cancelled")
		return 0
	case drainErr != nil:
		fmt.Fprintf(stderr, "histd: drain: %v\n", drainErr)
		return 1
	}
	fmt.Fprintln(stderr, "histd: drained cleanly")
	return 0
}
