package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/histtest/client"
)

// syncBuffer is an io.Writer the server goroutine and the test can share.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`listening on (http://\S+)`)

// startHistd runs histd's run() on an ephemeral port and returns its
// base URL, a stop function (simulating SIGTERM via context
// cancellation), and the exit-code channel.
func startHistd(t *testing.T, extraArgs ...string) (string, *syncBuffer, context.CancelFunc, chan int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stderr := &syncBuffer{}
	exit := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() { exit <- run(ctx, args, io.Discard, stderr) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := listenLine.FindStringSubmatch(stderr.String()); m != nil {
			return m[1], stderr, cancel, exit
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("histd did not start: %s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeAndGracefulShutdown drives the full binary lifecycle: start,
// serve a real tester request, drain on the termination signal, exit 0.
func TestServeAndGracefulShutdown(t *testing.T) {
	url, stderr, stop, exit := startHistd(t, "-workers", "2", "-queue", "4")
	c := client.New(url)

	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	res, err := c.Test(context.Background(), client.TestRequest{
		Spec: &client.HistogramSpec{N: 100_000, Cuts: []int{25_000, 50_000}, Masses: []float64{0.5, 0.2, 0.3}},
		K:    8, Eps: 0.8,
	})
	if err != nil {
		t.Fatalf("served request failed: %v", err)
	}
	if !res.Accept || res.Trace == nil {
		t.Fatalf("unexpected verdict %+v", res)
	}

	stop() // SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("histd exited %d:\n%s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("histd did not exit after the termination signal:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained cleanly") {
		t.Fatalf("expected a clean drain, got:\n%s", stderr.String())
	}
}

// TestTraceJSONFlag: -trace-json streams per-request stage events and
// flushes them on shutdown.
func TestTraceJSONFlag(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	url, stderr, stop, exit := startHistd(t, "-trace-json", trace)
	c := client.New(url)

	if _, err := c.Test(context.Background(), client.TestRequest{
		Spec: &client.HistogramSpec{N: 100_000, Cuts: []int{25_000, 50_000}, Masses: []float64{0.5, 0.2, 0.3}},
		K:    8, Eps: 0.8,
	}); err != nil {
		t.Fatalf("served request failed: %v", err)
	}

	stop()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("histd exited %d:\n%s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("histd did not exit:\n%s", stderr.String())
	}

	payload, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	for _, kind := range []string{`"run-start"`, `"stage-exit"`, `"sieve-round"`, `"run-end"`} {
		if !strings.Contains(string(payload), kind) {
			t.Fatalf("trace is missing %s events:\n%s", kind, payload)
		}
	}
}

// TestBadFlags: flag errors exit 2 without starting a listener.
func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-workers", "two"},
		{"positional"},
	} {
		stderr := &syncBuffer{}
		if code := run(context.Background(), args, io.Discard, stderr); code != 2 {
			t.Fatalf("run(%v) = %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

// TestBadListenAddr: an unusable address is an exit-1 startup failure.
func TestBadListenAddr(t *testing.T) {
	stderr := &syncBuffer{}
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:99999"}, io.Discard, stderr); code != 1 {
		t.Fatalf("run with a bad address = %d, want 1 (stderr: %s)", code, stderr.String())
	}
}
