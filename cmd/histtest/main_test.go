package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/histtest"
)

// runCmd invokes run() with captured output.
func runCmd(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRequiredFlag(t *testing.T) {
	code, out, _ := runCmd("-n", "1024", "-k", "4", "-eps", "0.25", "-required")
	if code != 0 {
		t.Fatalf("-required exited %d", code)
	}
	if !strings.Contains(out, "required samples for n=1024 k=4") {
		t.Fatalf("unexpected -required output: %q", out)
	}

	code, out, _ = runCmd("-n", "1024", "-mode", "identity", "-eps", "0.3", "-required")
	if code != 0 || !strings.Contains(out, "identity") {
		t.Fatalf("identity -required: code %d, output %q", code, out)
	}
}

func TestDemoAcceptAndReject(t *testing.T) {
	code, out, _ := runCmd("-n", "4096", "-k", "8", "-eps", "0.6", "-demo", "hist", "-seed", "3")
	if code != 0 || !strings.Contains(out, "ACCEPT") {
		t.Fatalf("-demo hist: code %d, output %q", code, out)
	}

	code, out, _ = runCmd("-n", "4096", "-k", "2", "-eps", "0.3", "-demo", "far", "-seed", "3")
	if code != 3 || !strings.Contains(out, "REJECT") {
		t.Fatalf("-demo far: code %d, output %q", code, out)
	}
}

func TestFileInput(t *testing.T) {
	// A uniform staircase dataset large enough to replay the budget.
	path := filepath.Join(t.TempDir(), "values.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << 10
	need := histtest.RequiredSamples(n, 4, 0.5, histtest.Options{})
	for i := 0; int64(i) < need; i++ {
		fmt.Fprintln(f, (i*7)%n)
	}
	f.Close()

	code, out, errb := runCmd("-n", fmt.Sprint(n), "-k", "4", "-eps", "0.5", "-file", path)
	if code != 0 && code != 3 {
		t.Fatalf("-file run errored: code %d, stderr %q", code, errb)
	}
	if !strings.Contains(errb, "read ") || !(strings.Contains(out, "ACCEPT") || strings.Contains(out, "REJECT")) {
		t.Fatalf("unexpected output: stdout %q, stderr %q", out, errb)
	}
}

func TestIdentityModeFlagPath(t *testing.T) {
	h, err := histtest.NewHistogram(1024, []int{256, 512}, []float64{0.5, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	refPath := filepath.Join(t.TempDir(), "ref.json")
	payload, _ := json.Marshal(h)
	os.WriteFile(refPath, payload, 0o644)

	dataPath := filepath.Join(t.TempDir(), "values.txt")
	f, _ := os.Create(dataPath)
	sample := h.Sampler(42)
	for i := 0; i < 200_000; i++ {
		fmt.Fprintln(f, sample())
	}
	f.Close()

	code, out, errb := runCmd("-n", "1024", "-mode", "identity", "-eps", "0.4",
		"-ref", refPath, "-file", dataPath)
	if code != 0 || !strings.Contains(out, "ACCEPT") {
		t.Fatalf("identity self-test: code %d, stdout %q, stderr %q", code, out, errb)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"unknown flag", []string{"-n", "8", "-k", "2", "-bogus"}, 2},
		{"bad flag value", []string{"-n", "eight", "-k", "2"}, 2},
		{"positional args", []string{"-n", "8", "-k", "2", "stray"}, 2},
		{"missing n", []string{"-k", "2"}, 2},
		{"missing k", []string{"-n", "8"}, 2},
		{"identity without ref", []string{"-n", "8", "-mode", "identity"}, 2},
		{"unknown mode", []string{"-n", "8", "-mode", "weird"}, 1},
		{"unknown demo", []string{"-n", "8", "-k", "2", "-demo", "weird"}, 1},
	}
	for _, tc := range cases {
		if code, _, _ := runCmd(tc.args...); code != tc.code {
			t.Errorf("%s: run(%v) = %d, want %d", tc.name, tc.args, code, tc.code)
		}
	}
}
