// Command histtest tests whether a dataset of integer values in [0, n)
// looks like it was drawn from a k-histogram distribution, or is ε-far
// from every such distribution. Further modes test monotonicity and
// identity against a serialized reference histogram.
//
// Usage:
//
//	histtest -n 1024 -k 4 -eps 0.25 -file values.txt
//	generate_values | histtest -n 1024 -k 4 -eps 0.25
//	histtest -n 1024 -k 4 -eps 0.25 -demo far        # synthetic demo input
//	histtest -n 1024 -mode monotone -dir dec -eps 0.3 -file values.txt
//	histtest -n 1024 -mode identity -ref sketch.json -eps 0.3 -file values.txt
//
// The input is whitespace-separated integers. Use -required to print the
// sample budget for the chosen parameters and exit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/histtest"
	"repro/internal/cli"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main. Exit codes: 0 accept, 1 runtime
// error, 2 usage error, 3 reject.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("histtest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n        = fs.Int("n", 0, "domain size (values are integers in [0, n))")
		k        = fs.Int("k", 0, "histogram class parameter (mode=histogram)")
		eps      = fs.Float64("eps", 0.25, "distance parameter ε")
		mode     = fs.String("mode", "histogram", "what to test: 'histogram', 'monotone', or 'identity'")
		dir      = fs.String("dir", "dec", "monotone direction: 'dec' or 'inc' (mode=monotone)")
		ref      = fs.String("ref", "", "reference histogram JSON file (mode=identity)")
		file     = fs.String("file", "", "input file (default: stdin)")
		demo     = fs.String("demo", "", "generate synthetic input instead: 'hist' or 'far'")
		seed     = fs.Uint64("seed", 1, "tester seed")
		scale    = fs.Float64("scale", 1, "sample budget multiplier")
		paper    = fs.Bool("paper", false, "use the literal paper constants (very sample-hungry)")
		required = fs.Bool("required", false, "print the required sample count and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "histtest: unexpected arguments: %v\n", fs.Args())
		return 2
	}
	if *n <= 0 {
		fmt.Fprintln(stderr, "histtest: -n is required and must be positive")
		return 2
	}
	if *mode == "histogram" && *k <= 0 {
		fmt.Fprintln(stderr, "histtest: -k is required and must be positive in histogram mode")
		return 2
	}
	opt := histtest.Options{Seed: *seed, Scale: *scale, Paper: *paper}

	if *required {
		switch *mode {
		case "identity":
			fmt.Fprintf(stdout, "required samples for identity over n=%d eps=%.3f: %d\n",
				*n, *eps, histtest.RequiredIdentitySamples(*n, *eps, opt))
		default:
			fmt.Fprintf(stdout, "required samples for n=%d k=%d eps=%.3f: %d\n",
				*n, *k, *eps, histtest.RequiredSamples(*n, *k, *eps, opt))
		}
		return 0
	}

	var verdict histtest.Verdict
	var err error
	var what string
	switch *mode {
	case "histogram":
		what = fmt.Sprintf("a %d-histogram", *k)
		if *demo != "" {
			verdict, err = runDemo(*demo, *n, *k, *eps, opt)
			break
		}
		var data []int
		data, err = cli.ReadValues(*file)
		if err == nil {
			fmt.Fprintf(stderr, "read %d values over [0,%d)\n", len(data), *n)
			verdict, err = histtest.TestSamples(data, *n, *k, *eps, opt)
		}
	case "monotone":
		decreasing := *dir != "inc"
		what = "monotone (" + *dir + ")"
		var data []int
		data, err = cli.ReadValues(*file)
		if err == nil {
			verdict, err = testMonotoneSamples(data, *n, decreasing, *eps, opt)
		}
	case "identity":
		if *ref == "" {
			fmt.Fprintln(stderr, "histtest: -ref is required in identity mode")
			return 2
		}
		var reference histtest.Histogram
		var payload []byte
		payload, err = os.ReadFile(*ref)
		if err == nil {
			err = json.Unmarshal(payload, &reference)
		}
		if err == nil {
			what = "identical to " + *ref
			var data []int
			data, err = cli.ReadValues(*file)
			if err == nil {
				var src histtest.Source
				var fn func() int
				fn, err = cli.CyclingSource(data)
				if err == nil {
					src = fn
					verdict, err = histtest.TestIdentity(src, &reference, *eps, opt)
				}
			}
		}
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintf(stderr, "histtest: %v\n", err)
		return 1
	}
	if verdict.IsKHistogram {
		fmt.Fprintf(stdout, "ACCEPT: consistent with %s (used %d samples)\n", what, verdict.SamplesUsed)
		return 0
	}
	fmt.Fprintf(stdout, "REJECT: ε-far from %s (stage %s: %s; used %d samples)\n",
		what, verdict.Stage, verdict.Detail, verdict.SamplesUsed)
	return 3
}

// testMonotoneSamples adapts a finite dataset to the monotone tester's
// source interface (cycling — adequate for large datasets).
func testMonotoneSamples(data []int, n int, decreasing bool, eps float64, opt histtest.Options) (histtest.Verdict, error) {
	src, err := cli.CyclingSource(data)
	if err != nil {
		return histtest.Verdict{}, err
	}
	return histtest.TestMonotone(src, n, decreasing, eps, opt)
}

// runDemo tests a synthetic source so the tool can be exercised without a
// dataset.
func runDemo(kind string, n, k int, eps float64, opt histtest.Options) (histtest.Verdict, error) {
	switch kind {
	case "hist":
		h, err := histtest.NewHistogram(n, []int{n / 4, n / 2}, []float64{0.5, 0.2, 0.3})
		if err != nil {
			return histtest.Verdict{}, err
		}
		return histtest.TestSource(h.Sampler(42), n, k, eps, opt)
	case "far":
		// A fine staircase that no small-k histogram approximates.
		cuts := make([]int, 0, 63)
		masses := make([]float64, 0, 64)
		for j := 0; j < 64; j++ {
			if j > 0 {
				cuts = append(cuts, j*n/64)
			}
			masses = append(masses, float64(j%4+1))
		}
		h, err := histtest.NewHistogram(n, cuts, masses)
		if err != nil {
			return histtest.Verdict{}, err
		}
		return histtest.TestSource(h.Sampler(42), n, k, eps, opt)
	default:
		return histtest.Verdict{}, fmt.Errorf("unknown demo %q (want 'hist' or 'far')", kind)
	}
}
