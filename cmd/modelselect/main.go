// Command modelselect runs the paper's model-selection pipeline
// (Section 1.1): doubling search over the histogram tester for the
// smallest adequate bucket count k, then a V-optimal histogram sketch
// built at that k, reported with its bucket boundaries.
//
// Usage:
//
//	modelselect -n 1024 -eps 0.3 -file values.txt
//	modelselect -n 1024 -eps 0.3 -demo   # synthetic 4-histogram input
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/histtest"
	"repro/internal/cli"
)

func main() {
	var (
		n    = flag.Int("n", 0, "domain size")
		eps  = flag.Float64("eps", 0.3, "distance parameter ε")
		kmax = flag.Int("kmax", 64, "largest k to consider")
		file = flag.String("file", "", "input file (default: stdin)")
		demo = flag.Bool("demo", false, "use a synthetic 4-histogram source instead of input data")
		seed = flag.Uint64("seed", 1, "search seed")
		reps = flag.Int("reps", 3, "tester repetitions per k (majority vote)")
	)
	flag.Parse()
	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "modelselect: -n is required")
		os.Exit(2)
	}

	var src histtest.Source
	var data []int
	if *demo {
		h, err := histtest.NewHistogram(*n, []int{*n / 8, *n / 2, 3 * *n / 4}, []float64{0.4, 0.1, 0.3, 0.2})
		if err != nil {
			fmt.Fprintf(os.Stderr, "modelselect: %v\n", err)
			os.Exit(1)
		}
		src = h.Sampler(42)
	} else {
		var err error
		data, err = cli.ReadValues(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "modelselect: %v\n", err)
			os.Exit(1)
		}
		if len(data) == 0 {
			fmt.Fprintln(os.Stderr, "modelselect: empty input")
			os.Exit(1)
		}
		// Cycle the dataset as the source (standard bootstrap view of a
		// large dataset as a distribution).
		fn, err := cli.CyclingSource(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "modelselect: %v\n", err)
			os.Exit(1)
		}
		src = func() int { return fn() }
	}

	res, err := histtest.SmallestK(src, *n, *eps, histtest.SelectOptions{
		Options: histtest.Options{Seed: *seed},
		Reps:    *reps,
		KMax:    *kmax,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "modelselect: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("probed k values: %v\n", res.Probed)
	fmt.Printf("samples used in search: %d\n", res.SamplesUsed)
	if res.K > *kmax {
		fmt.Printf("no k <= %d passes at ε=%.3f; the data needs more than %d bins at this accuracy\n", *kmax, *eps, *kmax)
		os.Exit(3)
	}
	fmt.Printf("selected k = %d\n", res.K)

	// Build the sketch from the dataset (or fresh demo samples).
	if data == nil {
		data = make([]int, 200000)
		for i := range data {
			data[i] = src()
		}
	}
	sketch, err := histtest.BuildHistogram(data, *n, res.K, histtest.BuildVOptimal)
	if err != nil {
		fmt.Fprintf(os.Stderr, "modelselect: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("V-optimal sketch with %d buckets:\n", sketch.Buckets())
	prev := 0.0
	for i := 0; i < sketch.N(); i++ {
		p := sketch.Prob(i)
		if i == 0 || p != prev {
			fmt.Printf("  from %6d: height %.6g\n", i, p)
			prev = p
		}
	}

	// Scree curve of the empirical distribution: how the residual distance
	// to H_k decays as k grows — context for the selected k.
	fine, err := histtest.BuildHistogram(data, *n, min(*n, 512), histtest.BuildEquiWidth)
	if err == nil {
		kTop := res.K + 4
		if curve, err := fine.DistanceCurve(kTop); err == nil {
			fmt.Printf("\nempirical distance to H_k (scree):\n")
			for k := 1; k <= kTop; k++ {
				marker := ""
				if k == res.K {
					marker = "   <- selected"
				}
				fmt.Printf("  k=%-3d dist %.4f%s\n", k, curve[k-1], marker)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
